package replay_test

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/pcap"
	"repro/internal/topo"
	"repro/internal/tracer"
	"repro/internal/tracer/live"
	"repro/internal/tracer/replay"
)

// The replay acceptance suite captures hermetic campaigns through the real
// mux (SimConn replaying a netsim topology on the virtual clock), then
// re-runs the identically-configured campaign over the capture file. The
// statistics must agree byte for byte: the live taps stamp captures with
// the very clock readings their RTTs use, so a replayed RTT is the
// original RTT, not an approximation of it.

// replayTopo mirrors the live package's muxTopo: per-probe randomness is
// zeroed so responses are pure functions of probe bytes and replaying in
// any interleaving yields the same routes.
func replayTopo(t *testing.T, dests int, seed int64) *topo.Scenario {
	t.Helper()
	gc := topo.DefaultGenConfig()
	gc.Seed = seed
	gc.Destinations = dests
	gc.FlipPerProbe = 0
	gc.PPerPacket = 0
	gc.PPerPacketUnequal = 0
	return topo.Generate(gc)
}

func responder(net *netsim.Network) func([]byte) ([]byte, bool) {
	return func(probe []byte) ([]byte, bool) {
		resp, _, ok := net.Exchange(probe)
		return resp, ok
	}
}

// statsJSON renders Stats in the same canonical form the anomaly-study
// binary persists, so "byte-identical" means what a user would diff.
func statsJSON(t *testing.T, s *measure.Stats) []byte {
	t.Helper()
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

// captureCampaign runs a streamed multi-worker campaign through one shared
// mux with a capture tap, and returns its stats and the capture path.
func captureCampaign(t *testing.T, sc *topo.Scenario, sched live.SimSchedule, retries, workers, rounds int) (*measure.Stats, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "campaign.pcap")
	cap, err := pcap.CreateCapture(path)
	if err != nil {
		t.Fatal(err)
	}
	fake := &live.SimConn{Respond: responder(sc.Net), Sched: sched}
	m, err := live.NewMux(live.MuxConfig{
		Source: sc.Net.Source(), Conn: fake, Retries: retries, Capture: cap,
	})
	if err != nil {
		t.Fatal(err)
	}
	camp, err := measure.NewCampaign(nil, measure.Config{
		Dests: sc.Dests, Rounds: rounds, Workers: workers, PortSeed: 42,
		Batch: true, Stream: true,
		TransportFor: func(int) tracer.Transport { return m.Transport() },
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cap.Close(); err != nil {
		t.Fatal(err)
	}
	return res.Stats, path
}

// replayCampaign re-runs the same campaign shape over the capture.
func replayCampaign(t *testing.T, rt *replay.Transport, sc *topo.Scenario, workers, rounds int) *measure.Stats {
	t.Helper()
	camp, err := measure.NewCampaign(nil, measure.Config{
		Dests: sc.Dests, Rounds: rounds, Workers: workers, PortSeed: 42,
		Batch: true, Stream: true,
		TransportFor: func(int) tracer.Transport { return rt },
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res.Stats
}

// TestReplayByteIdenticalStats is the tentpole acceptance test: an
// 8-worker campaign captured through the shared mux, replayed offline with
// the same configuration, must reproduce the streamed statistics byte for
// byte — RTT sums included.
func TestReplayByteIdenticalStats(t *testing.T) {
	const seed, dests, workers, rounds = 23, 16, 8, 2
	sc := replayTopo(t, dests, seed)
	want, path := captureCampaign(t, sc, live.SimSchedule{}, 1, workers, rounds)

	rt, err := replay.Open(path, replay.Config{Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.Source(); got != sc.Net.Source() {
		t.Fatalf("inferred source %v, want %v", got, sc.Net.Source())
	}
	rdests := rt.Destinations()
	seen := make(map[string]bool, len(rdests))
	for _, d := range rdests {
		seen[d.String()] = true
	}
	for _, d := range sc.Dests {
		if !seen[d.String()] {
			t.Fatalf("capture lost destination %v", d)
		}
	}

	got := replayCampaign(t, rt, sc, workers, rounds)
	if !bytes.Equal(statsJSON(t, got), statsJSON(t, want)) {
		t.Fatalf("replayed stats diverge from the captured campaign\ngot:  %s\nwant: %s",
			statsJSON(t, got), statsJSON(t, want))
	}
	if l := rt.Leftover(); l != 0 {
		t.Errorf("%d captured exchanges never served — replay under-probed", l)
	}
	if j := rt.Junk(); j != 0 {
		t.Errorf("%d junk records in a clean capture", j)
	}
}

// TestReplayRetransmitFolding drives the folding rule: under a
// drop-first-attempt schedule with Retries=1 every probe appears twice in
// the capture (the retransmit answered, the first send not), and replay
// must fold each pair into one exchange whose RTT is charged against the
// retransmission — Karn's rule sees the same samples offline.
func TestReplayRetransmitFolding(t *testing.T) {
	const seed, dests, workers, rounds = 29, 8, 4, 2
	sc := replayTopo(t, dests, seed)
	seenProbe := make(map[string]bool)
	var mu sync.Mutex
	sched := live.SimSchedule{Drop: func(_ int, probe []byte) bool {
		mu.Lock()
		defer mu.Unlock()
		if seenProbe[string(probe)] {
			return false
		}
		seenProbe[string(probe)] = true
		return true
	}}
	want, path := captureCampaign(t, sc, sched, 1, workers, rounds)

	rt, err := replay.Open(path, replay.Config{Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := replayCampaign(t, rt, sc, workers, rounds)
	if !bytes.Equal(statsJSON(t, got), statsJSON(t, want)) {
		t.Fatalf("stats diverge under retransmit folding\ngot:  %s\nwant: %s",
			statsJSON(t, got), statsJSON(t, want))
	}
	if l := rt.Leftover(); l != 0 {
		t.Errorf("%d captured exchanges never served", l)
	}
}

// TestReplayTCPReorderFIFO pins satellite fidelity for tcptraceroute's
// constant-sequence probes: terminal RSTs carry no per-probe identifier,
// so under reordered arrival the mux credits them to the oldest in-flight
// probe (the FIFO rule). Replay must reproduce that attribution exactly —
// hop for hop, RTT for RTT — because its bind FIFO is the mux's
// registration order.
func TestReplayTCPReorderFIFO(t *testing.T) {
	const seed, dests = 31, 4
	sc := replayTopo(t, dests, seed)
	path := filepath.Join(t.TempDir(), "tcp.pcap")
	cap, err := pcap.CreateCapture(path)
	if err != nil {
		t.Fatal(err)
	}
	fake := &live.SimConn{Respond: responder(sc.Net), Sched: live.SimSchedule{Reorder: true}}
	m, err := live.NewMux(live.MuxConfig{Source: sc.Net.Source(), Conn: fake, Capture: cap})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*tracer.Route, len(sc.Dests))
	for i, d := range sc.Dests {
		r, err := tracer.NewTCPTraceroute(m.Transport(), tracer.Options{Batch: true}).Trace(d)
		if err != nil {
			t.Fatalf("capture trace %v: %v", d, err)
		}
		want[i] = r
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cap.Close(); err != nil {
		t.Fatal(err)
	}

	rt, err := replay.Open(path, replay.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range sc.Dests {
		got, err := tracer.NewTCPTraceroute(rt, tracer.Options{Batch: true}).Trace(d)
		if err != nil {
			t.Fatalf("replay trace %v: %v", d, err)
		}
		// Full-fidelity comparison: not just the path observables
		// Route.Equal checks, but RTTs and response IP IDs too.
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("dest %v: replayed route differs from captured mux route\ngot:  %+v\nwant: %+v",
				d, got, want[i])
		}
	}
	if l := rt.Leftover(); l != 0 {
		t.Errorf("%d captured exchanges never served", l)
	}
}

// TestReplayDivergenceIsLoud checks the strict-matching contract: probes
// the capture never held, flows already exhausted, and byte-level probe
// mismatches all fail with a fatal error instead of silently starring.
func TestReplayDivergenceIsLoud(t *testing.T) {
	const seed, dests = 37, 4
	sc := replayTopo(t, dests, seed)
	_, path := captureCampaign(t, sc, live.SimSchedule{}, 0, 2, 1)

	// A probe from a differently-seeded campaign: its flow key was never
	// captured.
	rt, err := replay.Open(path, replay.Config{})
	if err != nil {
		t.Fatal(err)
	}
	other := replayTopo(t, dests, seed+1)
	foreign := buildProbe(t, other)
	if _, _, _, err := rt.ExchangeErr(foreign); err == nil {
		t.Fatal("foreign probe served from an unrelated capture")
	}

	// Same flow key, different bytes: mutate a captured probe's TTL (the
	// flow key covers addresses, protocol, IP ID, and the first transport
	// words — not the TTL), and the byte-strict check must reject it.
	recs, err := pcap.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutated := append([]byte(nil), recs[0].Data...)
	mutated[8] = 77 // TTL
	rt2, err := replay.Open(path, replay.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := rt2.ExchangeErr(mutated); err == nil {
		t.Fatal("byte-mutated probe served despite the mismatch")
	}

	// Exhaustion: replay the campaign fully, then ask for one more.
	rt3, err := replay.Open(path, replay.Config{})
	if err != nil {
		t.Fatal(err)
	}
	replayCampaign(t, rt3, sc, 2, 1)
	if _, _, _, err := rt3.ExchangeErr(append([]byte(nil), recs[0].Data...)); err == nil {
		t.Fatal("exhausted flow served an extra exchange")
	}
	// The batch path surfaces the same error per probe.
	out := make([]tracer.ProbeResult, 1)
	rt3.ExchangeBatch([][]byte{append([]byte(nil), recs[0].Data...)}, out)
	if out[0].Err == nil || out[0].OK {
		t.Fatal("ExchangeBatch hid the divergence error")
	}
}

// buildProbe asks a ParisUDP engine over the plain simulator for its first
// probe bytes by capturing one trace's traffic — cheap way to get a
// well-formed probe for a foreign topology.
func buildProbe(t *testing.T, sc *topo.Scenario) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "one.pcap")
	cap, err := pcap.CreateCapture(path)
	if err != nil {
		t.Fatal(err)
	}
	fake := &live.SimConn{Respond: responder(sc.Net)}
	m, err := live.NewMux(live.MuxConfig{Source: sc.Net.Source(), Conn: fake, Capture: cap})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tracer.NewParisUDP(m.Transport(), tracer.Options{Batch: true}).Trace(sc.Dests[0]); err != nil {
		t.Fatal(err)
	}
	m.Close()
	cap.Close()
	recs, err := pcap.ReadFile(path)
	if err != nil || len(recs) == 0 {
		t.Fatalf("probe capture: %d recs, %v", len(recs), err)
	}
	return append([]byte(nil), recs[0].Data...)
}

// TestReplayTimeoutGuard pins the late-response rule: a response stamped
// beyond Config.Timeout after its probe's last transmission is junk — the
// live wheel had already expired that probe.
func TestReplayTimeoutGuard(t *testing.T) {
	const seed = 41
	sc := replayTopo(t, 1, seed)
	_, path := captureCampaign(t, sc, live.SimSchedule{}, 0, 1, 1)
	recs, err := pcap.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Push every inbound record an hour into the future; probes keep their
	// stamps. Every response is now hopelessly late.
	rt0, err := replay.FromRecords(recs, replay.Config{})
	if err != nil {
		t.Fatal(err)
	}
	src := rt0.Source()
	late := make([]pcap.Record, len(recs))
	for i, r := range recs {
		late[i] = r
		if !probeFrom(r.Data, src) {
			late[i].TS = r.TS.Add(time.Hour)
		}
	}
	rt, err := replay.FromRecords(late, replay.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Junk() == 0 {
		t.Fatal("hour-late responses were bound instead of junked")
	}
	// And a generous timeout accepts them again.
	rt2, err := replay.FromRecords(late, replay.Config{Timeout: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if rt2.Junk() != 0 {
		t.Fatalf("junk=%d with a 2h timeout", rt2.Junk())
	}
}

// probeFrom reports whether pkt is an IPv4 packet sourced at src — enough
// to split the sample capture's directions in the timeout test.
func probeFrom(pkt []byte, src interface{ As4() [4]byte }) bool {
	if len(pkt) < 20 {
		return false
	}
	a := src.As4()
	return pkt[12] == a[0] && pkt[13] == a[1] && pkt[14] == a[2] && pkt[15] == a[3]
}
