package tracer

import (
	"fmt"
	"net/netip"
	"time"
)

// Transport carries serialized IPv4 probes to the network under measurement
// and returns the serialized response packet, if any.
type Transport interface {
	// Exchange sends one probe and blocks until its response arrives or
	// the transport-level timeout passes (ok=false: a star).
	Exchange(probe []byte) (resp []byte, rtt time.Duration, ok bool)
	// Source returns the local address probes are sent from.
	Source() netip.Addr
}

// Method selects the probe transport protocol.
type Method int

const (
	MethodUDP Method = iota
	MethodICMP
	MethodTCP
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodUDP:
		return "udp"
	case MethodICMP:
		return "icmp"
	case MethodTCP:
		return "tcp"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ReplyKind classifies the response to a probe.
type ReplyKind int

const (
	KindNone ReplyKind = iota // no response: a star ('*')
	KindTimeExceeded
	KindPortUnreachable
	KindHostUnreachable
	KindNetUnreachable
	KindOtherUnreachable
	KindEchoReply
	KindTCPReset
	KindTCPSynAck
)

// String implements fmt.Stringer.
func (k ReplyKind) String() string {
	switch k {
	case KindNone:
		return "*"
	case KindTimeExceeded:
		return "time-exceeded"
	case KindPortUnreachable:
		return "port-unreachable"
	case KindHostUnreachable:
		return "host-unreachable"
	case KindNetUnreachable:
		return "net-unreachable"
	case KindOtherUnreachable:
		return "unreachable"
	case KindEchoReply:
		return "echo-reply"
	case KindTCPReset:
		return "tcp-rst"
	case KindTCPSynAck:
		return "tcp-synack"
	default:
		return fmt.Sprintf("ReplyKind(%d)", int(k))
	}
}

// Terminal reports whether this reply ends a trace: the destination was
// reached or an unreachability message arrived.
func (k ReplyKind) Terminal() bool {
	switch k {
	case KindPortUnreachable, KindHostUnreachable, KindNetUnreachable,
		KindOtherUnreachable, KindEchoReply, KindTCPReset, KindTCPSynAck:
		return true
	}
	return false
}

// Flag returns the traceroute output annotation for the reply ("!H", "!N",
// "!P", or "").
func (k ReplyKind) Flag() string {
	switch k {
	case KindHostUnreachable:
		return "!H"
	case KindNetUnreachable:
		return "!N"
	case KindOtherUnreachable:
		return "!X"
	default:
		return ""
	}
}

// Hop records one probe/response exchange.
type Hop struct {
	// TTL is the probe's initial TTL (the hop number).
	TTL int
	// Addr is the responder's source address; invalid for a star.
	Addr netip.Addr
	// RTT is the round-trip time (zero for a star).
	RTT time.Duration
	// Kind classifies the response.
	Kind ReplyKind
	// ProbeTTL is the TTL of the quoted probe inside an ICMP error: the
	// probe's TTL when the responding router received and discarded it.
	// Normal value is 1; 0 signals zero-TTL forwarding upstream (Fig. 4).
	// -1 when the response carries no quote (e.g. TCP resets).
	ProbeTTL int
	// RespTTL is the TTL of the response packet itself on arrival, used
	// to infer return-path length and to detect address rewriting.
	RespTTL int
	// IPID is the IP Identification of the response packet — the
	// responding box's internal counter.
	IPID uint16
	// Mismatched is set when a response arrived but failed strict
	// probe/response matching.
	Mismatched bool
}

// Star reports whether no response was received.
func (h Hop) Star() bool { return h.Kind == KindNone }

// String renders the hop roughly the way traceroute prints it.
func (h Hop) String() string {
	if h.Star() {
		return fmt.Sprintf("%2d  *", h.TTL)
	}
	s := fmt.Sprintf("%2d  %s  %.3f ms", h.TTL, h.Addr, float64(h.RTT.Microseconds())/1000)
	if f := h.Kind.Flag(); f != "" {
		s += "  " + f
	}
	return s
}

// HaltReason records why a trace ended.
type HaltReason int

const (
	HaltDestination HaltReason = iota // destination responded
	HaltUnreachable                   // ICMP Destination Unreachable
	HaltStars                         // too many consecutive stars
	HaltMaxTTL                        // ran out of hops
)

// String implements fmt.Stringer.
func (h HaltReason) String() string {
	switch h {
	case HaltDestination:
		return "destination"
	case HaltUnreachable:
		return "unreachable"
	case HaltStars:
		return "stars"
	case HaltMaxTTL:
		return "max-ttl"
	default:
		return fmt.Sprintf("HaltReason(%d)", int(h))
	}
}

// Route is the result of one traceroute: one Hop per TTL probed (the first
// response at each TTL), in TTL order. When Options.ProbesPerHop > 1, All
// holds every attempt.
type Route struct {
	Dest   netip.Addr
	Source netip.Addr
	Hops   []Hop
	All    [][]Hop
	Halt   HaltReason
}

// fnv64Offset and fnv64Prime are the 64-bit FNV-1a parameters; Fingerprint
// folds whole words rather than bytes, which keeps the FNV mixing structure
// at a fraction of the per-byte cost.
const (
	fnv64Offset uint64 = 14695981039346656037
	fnv64Prime  uint64 = 1099511628211
)

// addrWord flattens an IPv4 address into a hashable word; the zero word
// stands for the invalid address of a star hop.
func addrWord(a netip.Addr) uint64 {
	if !a.IsValid() {
		return 0
	}
	b := a.As4()
	return 1<<32 | uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3])
}

// Fingerprint returns a cheap FNV-1a hash over the route's path
// observables: destination, source, halt reason, and every hop's TTL,
// responder address, reply kind, quoted probe TTL, response TTL and match
// flag. Three per-exchange quantities are deliberately excluded — RTTs,
// the response IP IDs (each responder's counter advances on every reply,
// so no two rounds ever agree on them), and the per-attempt All table —
// because a path that forwarded identically must fingerprint identically
// round over round; that stability is what campaign accumulators intern
// on. Routes that compare Equal always share a fingerprint; the
// accumulator verifies fingerprint hits with Equal, and re-evaluates the
// two classification rules that do consult IP IDs against the current
// round's route (see the measure package's streaming contract).
func (r *Route) Fingerprint() uint64 {
	h := fnv64Offset
	h = (h ^ addrWord(r.Dest)) * fnv64Prime
	h = (h ^ addrWord(r.Source)) * fnv64Prime
	h = (h ^ uint64(r.Halt)) * fnv64Prime
	h = (h ^ uint64(len(r.Hops))) * fnv64Prime
	for i := range r.Hops {
		hp := &r.Hops[i]
		h = (h ^ uint64(uint32(hp.TTL))) * fnv64Prime
		h = (h ^ addrWord(hp.Addr)) * fnv64Prime
		w := uint64(uint32(hp.Kind))<<24 |
			uint64(uint8(hp.ProbeTTL))<<16 | uint64(uint8(hp.RespTTL))<<8
		if hp.Mismatched {
			w |= 1
		}
		h = (h ^ w) * fnv64Prime
	}
	return h
}

// Equal reports whether two routes carry identical path observables: same
// destination, source, halt reason, and hop-for-hop identical TTL,
// address, reply kind, probe TTL, response TTL and match flag. RTTs, IP
// IDs and the per-attempt All table are ignored for the reasons
// Fingerprint documents: they differ between exchanges even when the path
// did not.
func (r *Route) Equal(o *Route) bool {
	if r == o {
		return true
	}
	if r == nil || o == nil {
		return false
	}
	if r.Dest != o.Dest || r.Source != o.Source || r.Halt != o.Halt ||
		len(r.Hops) != len(o.Hops) {
		return false
	}
	for i := range r.Hops {
		a, b := &r.Hops[i], &o.Hops[i]
		if a.TTL != b.TTL || a.Addr != b.Addr || a.Kind != b.Kind ||
			a.ProbeTTL != b.ProbeTTL || a.RespTTL != b.RespTTL ||
			a.Mismatched != b.Mismatched {
			return false
		}
	}
	return true
}

// Addresses returns the measured route as the paper defines it
// (Section 4): the ℓ-tuple of responding addresses, with invalid entries
// for stars, indexed from the first probed TTL.
func (r *Route) Addresses() []netip.Addr {
	out := make([]netip.Addr, len(r.Hops))
	for i, h := range r.Hops {
		out[i] = h.Addr
	}
	return out
}

// Reached reports whether the destination itself answered.
func (r *Route) Reached() bool { return r.Halt == HaltDestination }

// Options configures a trace.
type Options struct {
	// Method selects UDP, ICMP Echo, or TCP probes. Default UDP.
	Method Method
	// MinTTL is the first TTL probed. The paper's study sets 2 to skip
	// the university network. Default 1.
	MinTTL int
	// MaxTTL bounds the trace length. The paper's study uses 39.
	// Default 30.
	MaxTTL int
	// ProbesPerHop is the number of probes per TTL. Classic traceroute
	// defaults to 3; the paper's study sends 1. Default 1.
	ProbesPerHop int
	// MaxConsecutiveStars halts the trace after this many consecutive
	// non-responses. The paper uses 8. Default 8.
	MaxConsecutiveStars int
	// SrcPort and DstPort seed the transport ports. Their exact meaning
	// depends on the engine: classic UDP increments DstPort per probe;
	// Paris keeps both fixed (they define the flow). Zero values select
	// each engine's historical default.
	SrcPort, DstPort uint16
	// ICMPID is the Echo Identifier for classic ICMP probes (classically
	// the process ID). For Paris ICMP it is the checksum target.
	ICMPID uint16
	// TOS sets the IP Type of Service octet on probes.
	TOS uint8
	// PayloadLen is the probe payload length. Paris UDP needs >= 2 to
	// absorb the checksum; default 12 mirrors classic traceroute's
	// default packet length.
	PayloadLen int
	// Batch opts into the windowed batched ladder when the transport
	// implements BatchTransport: the engine submits a window of TTLs as
	// one ExchangeBatch and truncates at the first terminal hop or
	// star-run boundary. Transports without batching fall back to the
	// sequential loop. Off by default.
	Batch bool
	// BatchWindow is the number of TTLs submitted per batch (0 selects
	// DefaultBatchWindow). Ignored unless Batch is set.
	BatchWindow int
	// PathHint sizes the first batch window to the expected ladder
	// length (in TTLs), typically the previous round's len(Route.Hops)
	// for the same destination; a correct hint makes the whole trace one
	// batch with no probes wasted past the terminal hop. 0 means no hint.
	PathHint int
	// Scratch supplies the reusable probe/result buffers of the batched
	// ladder. One Scratch must serve at most one goroutine; nil makes
	// the trace allocate its own.
	Scratch *Scratch
}

func (o Options) withDefaults() Options {
	if o.MinTTL <= 0 {
		o.MinTTL = 1
	}
	if o.MaxTTL <= 0 {
		o.MaxTTL = 30
	}
	if o.ProbesPerHop <= 0 {
		o.ProbesPerHop = 1
	}
	if o.MaxConsecutiveStars <= 0 {
		o.MaxConsecutiveStars = 8
	}
	if o.PayloadLen < 2 {
		o.PayloadLen = 12
	}
	return o
}

// Tracer runs traceroutes using a specific probing discipline. A Tracer is
// not safe for concurrent use (its probe builder recycles scratch buffers
// between probes); construct one per goroutine.
type Tracer interface {
	// Trace measures the route from the transport's source to dest.
	Trace(dest netip.Addr) (*Route, error)
	// Name identifies the discipline ("classic-udp", "paris-udp", ...).
	Name() string
}

// engine is the shared trace loop; each discipline supplies a prober.
type engine struct {
	name  string
	tp    Transport
	opts  Options
	build proberFunc
}

// proberFunc returns the serialized probe for the given TTL and global
// probe index, plus the expectation used to match its response. buf, when
// non-nil, offers a recycled buffer the probe may be marshaled into (the
// returned probe then aliases it); the builder allocates otherwise.
type proberFunc func(dest netip.Addr, ttl, probeIdx int, buf []byte) (probe []byte, exp expect, err error)

// haltFor classifies the halt reason of a terminal TTL. The hop actually
// recorded for the TTL (first) decides: an echo reply recorded at this hop
// is HaltDestination even when a sibling attempt drew an unreachable. Only
// when the recorded hop is itself non-terminal (a star or an upstream Time
// Exceeded alongside a terminal sibling) does the earliest terminal attempt
// classify instead.
func haltFor(first Hop, attempts []Hop) HaltReason {
	pick := first
	if !pick.Kind.Terminal() {
		for _, h := range attempts {
			if h.Kind.Terminal() {
				pick = h
				break
			}
		}
	}
	switch pick.Kind {
	case KindHostUnreachable, KindNetUnreachable, KindOtherUnreachable:
		return HaltUnreachable
	}
	return HaltDestination
}

// ladderState is the per-TTL bookkeeping shared verbatim by the sequential
// and the batched trace loops, which is what makes their Routes identical by
// construction: hop selection, the All backing array, star-run counting, and
// halt classification all live here.
type ladderState struct {
	rt    *Route
	opts  *Options
	stars int
	// backing holds every attempt of the trace contiguously when
	// ProbesPerHop > 1; rt.All carves windows out of it instead of
	// growing one slice per TTL attempt by attempt.
	backing []Hop
}

// step consumes one TTL's attempts (a reused scratch slice; step copies what
// it keeps) and reports whether the trace halts here, with rt.Halt set.
func (ls *ladderState) step(attempts []Hop) bool {
	first := attempts[0]
	for _, h := range attempts {
		if !h.Star() {
			first = h
			break
		}
	}
	ls.rt.Hops = append(ls.rt.Hops, first)
	if ls.opts.ProbesPerHop > 1 {
		s := len(ls.backing)
		ls.backing = append(ls.backing, attempts...)
		ls.rt.All = append(ls.rt.All, ls.backing[s:len(ls.backing):len(ls.backing)])
	}
	if first.Star() {
		ls.stars++
	} else {
		ls.stars = 0
	}
	terminal := false
	for _, h := range attempts {
		if h.Kind.Terminal() {
			terminal = true
			break
		}
	}
	if terminal {
		ls.rt.Halt = haltFor(first, attempts)
		return true
	}
	if ls.stars >= ls.opts.MaxConsecutiveStars {
		ls.rt.Halt = HaltStars
		return true
	}
	return false
}

// Trace implements Tracer. With Options.Batch set and a batching transport
// it runs the windowed batched ladder; otherwise the sequential loop.
func (e *engine) Trace(dest netip.Addr) (*Route, error) {
	if e.opts.Batch {
		if bt, ok := e.tp.(BatchTransport); ok {
			return e.traceBatched(bt, dest)
		}
	}
	return e.traceSequential(dest)
}

// traceSequential is the classic one-exchange-at-a-time trace loop. When
// the transport is fallible (FallibleTransport), exchange failures abort the
// trace with the transport's error — transient or fatal per the taxonomy in
// errors.go — instead of being recorded as stars.
func (e *engine) traceSequential(dest netip.Addr) (*Route, error) {
	o := e.opts
	ladder := o.MaxTTL - o.MinTTL + 1
	rt := &Route{Dest: dest, Source: e.tp.Source(), Halt: HaltMaxTTL}
	rt.Hops = make([]Hop, 0, ladder)
	ls := ladderState{rt: rt, opts: &o}
	if o.ProbesPerHop > 1 {
		ls.backing = make([]Hop, 0, ladder*o.ProbesPerHop)
		rt.All = make([][]Hop, 0, ladder)
	}
	attempts := make([]Hop, o.ProbesPerHop)
	ft, fallible := e.tp.(FallibleTransport)

	probeIdx := 0
	for ttl := o.MinTTL; ttl <= o.MaxTTL; ttl++ {
		for a := 0; a < o.ProbesPerHop; a++ {
			probe, exp, err := e.build(dest, ttl, probeIdx, nil)
			probeIdx++
			if err != nil {
				return nil, fmt.Errorf("tracer %s: building probe ttl=%d: %w", e.name, ttl, err)
			}
			var (
				resp []byte
				rtt  time.Duration
				ok   bool
			)
			if fallible {
				var xerr error
				resp, rtt, ok, xerr = ft.ExchangeErr(probe)
				if xerr != nil {
					return nil, fmt.Errorf("tracer %s: exchange ttl=%d: %w", e.name, ttl, xerr)
				}
			} else {
				resp, rtt, ok = e.tp.Exchange(probe)
			}
			h := Hop{TTL: ttl, ProbeTTL: -1}
			if ok {
				h = parseResponse(resp, exp)
				h.TTL = ttl
				h.RTT = rtt
			}
			attempts[a] = h
		}
		if ls.step(attempts) {
			return rt, nil
		}
	}
	return rt, nil
}

// Name implements Tracer.
func (e *engine) Name() string { return e.name }
