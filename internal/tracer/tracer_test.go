package tracer

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/packet"
)

var (
	tSrc  = netip.AddrFrom4([4]byte{10, 0, 0, 1})
	tDest = netip.AddrFrom4([4]byte{172, 16, 0, 1})
)

// captureTransport records probes and answers them from a script.
type captureTransport struct {
	src    netip.Addr
	probes [][]byte
	// respond builds the response for the i-th probe (nil = star).
	respond func(i int, probe []byte) []byte
}

func (c *captureTransport) Exchange(probe []byte) ([]byte, time.Duration, bool) {
	i := len(c.probes)
	c.probes = append(c.probes, append([]byte(nil), probe...))
	if c.respond == nil {
		return nil, 0, false
	}
	r := c.respond(i, probe)
	if r == nil {
		return nil, 0, false
	}
	return r, time.Millisecond, true
}

func (c *captureTransport) Source() netip.Addr { return c.src }

// timeExceededFrom builds a router's Time Exceeded response for the probe.
func timeExceededFrom(t *testing.T, router netip.Addr, probe []byte, respTTL uint8, ipid uint16) []byte {
	t.Helper()
	// Quote the probe as if it arrived with TTL 1.
	q := append([]byte(nil), probe...)
	if err := packet.PatchTTL(q, 1); err != nil {
		t.Fatal(err)
	}
	m, err := packet.TimeExceeded(q)
	if err != nil {
		t.Fatal(err)
	}
	body, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	hdr, _, err := packet.ParseIPv4(probe)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := (&packet.IPv4{TTL: respTTL, ID: ipid, Protocol: packet.ProtoICMP,
		Src: router, Dst: hdr.Src}).Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func portUnreachableFrom(t *testing.T, host netip.Addr, probe []byte) []byte {
	t.Helper()
	m, err := packet.DestUnreachable(packet.CodePortUnreachable, probe)
	if err != nil {
		t.Fatal(err)
	}
	body, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	hdr, _, err := packet.ParseIPv4(probe)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := (&packet.IPv4{TTL: 60, Protocol: packet.ProtoICMP, Src: host, Dst: hdr.Src}).Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func router(i int) netip.Addr { return netip.AddrFrom4([4]byte{10, 9, 0, byte(i)}) }

// scriptedChain answers hop i (< n) with Time Exceeded from router(i), and
// hop n with Port Unreachable from the destination.
func scriptedChain(t *testing.T, n int) *captureTransport {
	tp := &captureTransport{src: tSrc}
	tp.respond = func(i int, probe []byte) []byte {
		hdr, _, err := packet.ParseIPv4(probe)
		if err != nil {
			t.Fatal(err)
		}
		hop := int(hdr.TTL)
		if hop < n {
			return timeExceededFrom(t, router(hop), probe, 255-uint8(hop), uint16(i+1))
		}
		return portUnreachableFrom(t, tDest, probe)
	}
	return tp
}

// --- Header-discipline tests: the Fig. 2 table, verified from the actual
// probe bytes each engine emits. ---

func udpHeaderOf(t *testing.T, probe []byte) (*packet.IPv4, *packet.UDP) {
	t.Helper()
	h, payload, err := packet.ParseIPv4(probe)
	if err != nil {
		t.Fatal(err)
	}
	u, _, err := packet.ParseUDP(payload)
	if err != nil {
		t.Fatal(err)
	}
	return h, u
}

func TestClassicUDPVariesDstPort(t *testing.T) {
	tp := scriptedChain(t, 5)
	tr := NewClassicUDP(tp, Options{MaxTTL: 10})
	if _, err := tr.Trace(tDest); err != nil {
		t.Fatal(err)
	}
	var prevDst uint16
	for i, p := range tp.probes {
		_, u := udpHeaderOf(t, p)
		if i > 0 {
			if u.DstPort != prevDst+1 {
				t.Errorf("probe %d: dst port %d, want %d (incremented)", i, u.DstPort, prevDst+1)
			}
		} else if u.DstPort != ClassicBaseDstPort {
			t.Errorf("first dst port = %d, want %d", u.DstPort, ClassicBaseDstPort)
		}
		prevDst = u.DstPort
	}
}

func TestParisUDPHoldsFlowAndCodesChecksum(t *testing.T) {
	tp := scriptedChain(t, 5)
	tr := NewParisUDP(tp, Options{MaxTTL: 10, SrcPort: 12345, DstPort: 54321})
	if _, err := tr.Trace(tDest); err != nil {
		t.Fatal(err)
	}
	for i, p := range tp.probes {
		h, u := udpHeaderOf(t, p)
		if u.SrcPort != 12345 || u.DstPort != 54321 {
			t.Fatalf("probe %d: ports %d->%d changed (flow identifier must be constant)",
				i, u.SrcPort, u.DstPort)
		}
		if u.Checksum != uint16(i+1) {
			t.Errorf("probe %d: checksum %#04x, want %#04x (the probe identifier)",
				i, u.Checksum, uint16(i+1))
		}
		if !packet.VerifyUDPChecksum(h.Src, h.Dst, p[h.HeaderLen():]) {
			t.Errorf("probe %d: crafted checksum does not verify", i)
		}
	}
}

func TestClassicICMPVariesChecksum(t *testing.T) {
	tp := scriptedChain(t, 4)
	tr := NewClassicICMP(tp, Options{MaxTTL: 10})
	if _, err := tr.Trace(tDest); err != nil {
		t.Fatal(err)
	}
	sums := map[uint16]bool{}
	for _, p := range tp.probes {
		h, payload, err := packet.ParseIPv4(p)
		if err != nil {
			t.Fatal(err)
		}
		_ = h
		m, err := packet.ParseICMP(payload)
		if err != nil {
			t.Fatal(err)
		}
		sums[m.Checksum] = true
	}
	if len(sums) != len(tp.probes) {
		t.Errorf("classic ICMP produced %d distinct checksums over %d probes; must vary",
			len(sums), len(tp.probes))
	}
}

func TestParisICMPHoldsChecksum(t *testing.T) {
	tp := scriptedChain(t, 4)
	tr := NewParisICMP(tp, Options{MaxTTL: 10})
	if _, err := tr.Trace(tDest); err != nil {
		t.Fatal(err)
	}
	sums := map[uint16]bool{}
	seqs := map[uint16]bool{}
	for _, p := range tp.probes {
		_, payload, err := packet.ParseIPv4(p)
		if err != nil {
			t.Fatal(err)
		}
		m, err := packet.ParseICMP(payload)
		if err != nil {
			t.Fatal(err)
		}
		sums[m.Checksum] = true
		seqs[m.Seq] = true
		if !packet.VerifyICMPChecksum(payload) {
			t.Error("probe ICMP checksum invalid")
		}
	}
	if len(sums) != 1 {
		t.Errorf("paris ICMP checksum varied (%d values); flow identifier broken", len(sums))
	}
	if len(seqs) != len(tp.probes) {
		t.Errorf("paris ICMP must vary Seq for matching; got %d over %d probes",
			len(seqs), len(tp.probes))
	}
}

func TestParisTCPVariesSeqHoldsPorts(t *testing.T) {
	tp := &captureTransport{src: tSrc} // all stars; we only inspect probes
	tr := NewParisTCP(tp, Options{MaxTTL: 3, MaxConsecutiveStars: 10})
	if _, err := tr.Trace(tDest); err != nil {
		t.Fatal(err)
	}
	seqs := map[uint32]bool{}
	for _, p := range tp.probes {
		_, payload, err := packet.ParseIPv4(p)
		if err != nil {
			t.Fatal(err)
		}
		th, _, _, err := packet.ParseTCP(payload)
		if err != nil {
			t.Fatal(err)
		}
		if th.DstPort != TCPTracerouteDstPort {
			t.Errorf("dst port %d, want 80", th.DstPort)
		}
		seqs[th.Seq] = true
	}
	if len(seqs) != len(tp.probes) {
		t.Error("paris TCP must vary the sequence number per probe")
	}
}

func TestTCPTracerouteVariesIPID(t *testing.T) {
	tp := &captureTransport{src: tSrc}
	tr := NewTCPTraceroute(tp, Options{MaxTTL: 3, MaxConsecutiveStars: 10})
	if _, err := tr.Trace(tDest); err != nil {
		t.Fatal(err)
	}
	ids := map[uint16]bool{}
	seqs := map[uint32]bool{}
	for _, p := range tp.probes {
		h, payload, err := packet.ParseIPv4(p)
		if err != nil {
			t.Fatal(err)
		}
		th, _, _, err := packet.ParseTCP(payload)
		if err != nil {
			t.Fatal(err)
		}
		ids[h.ID] = true
		seqs[th.Seq] = true
	}
	if len(ids) != len(tp.probes) {
		t.Error("tcptraceroute must vary the IP Identification field")
	}
	if len(seqs) != 1 {
		t.Error("tcptraceroute keeps TCP fields constant")
	}
}

// --- Engine behaviour ---

func TestTraceStopsAtDestination(t *testing.T) {
	tp := scriptedChain(t, 4)
	rt, err := NewParisUDP(tp, Options{MaxTTL: 30}).Trace(tDest)
	if err != nil {
		t.Fatal(err)
	}
	if !rt.Reached() || rt.Halt != HaltDestination {
		t.Errorf("halt = %v, want destination", rt.Halt)
	}
	if len(rt.Hops) != 4 {
		t.Errorf("hops = %d, want 4", len(rt.Hops))
	}
	for i := 0; i < 3; i++ {
		if rt.Hops[i].Addr != router(i+1) {
			t.Errorf("hop %d = %v, want %v", i+1, rt.Hops[i].Addr, router(i+1))
		}
		if rt.Hops[i].Kind != KindTimeExceeded {
			t.Errorf("hop %d kind = %v", i+1, rt.Hops[i].Kind)
		}
		if rt.Hops[i].ProbeTTL != 1 {
			t.Errorf("hop %d probe TTL = %d, want 1", i+1, rt.Hops[i].ProbeTTL)
		}
	}
	last := rt.Hops[3]
	if last.Addr != tDest || last.Kind != KindPortUnreachable {
		t.Errorf("last hop = %v %v", last.Addr, last.Kind)
	}
}

func TestTraceStarsHalt(t *testing.T) {
	tp := &captureTransport{src: tSrc} // nothing ever answers
	rt, err := NewParisUDP(tp, Options{MaxTTL: 30, MaxConsecutiveStars: 8}).Trace(tDest)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Halt != HaltStars {
		t.Errorf("halt = %v, want stars", rt.Halt)
	}
	if len(rt.Hops) != 8 {
		t.Errorf("hops = %d, want 8 (the paper's stop rule)", len(rt.Hops))
	}
}

func TestTraceStarsResetOnResponse(t *testing.T) {
	tp := &captureTransport{src: tSrc}
	tp.respond = func(i int, probe []byte) []byte {
		hdr, _, _ := packet.ParseIPv4(probe)
		if hdr.TTL%5 == 0 { // answer every fifth hop
			return timeExceededFrom(t, router(int(hdr.TTL)), probe, 250, 1)
		}
		return nil
	}
	rt, err := NewParisUDP(tp, Options{MaxTTL: 14, MaxConsecutiveStars: 8}).Trace(tDest)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Halt != HaltMaxTTL {
		t.Errorf("halt = %v, want max-ttl (stars never reach 8 in a row)", rt.Halt)
	}
}

func TestTraceMinTTLSkipsLocalNetwork(t *testing.T) {
	tp := scriptedChain(t, 6)
	rt, err := NewParisUDP(tp, Options{MinTTL: 2, MaxTTL: 30}).Trace(tDest)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Hops[0].TTL != 2 {
		t.Errorf("first hop TTL = %d, want 2", rt.Hops[0].TTL)
	}
	hdr, _, err := packet.ParseIPv4(tp.probes[0])
	if err != nil {
		t.Fatal(err)
	}
	if hdr.TTL != 2 {
		t.Errorf("first probe TTL = %d, want 2", hdr.TTL)
	}
}

func TestTraceHostUnreachableHalts(t *testing.T) {
	tp := &captureTransport{src: tSrc}
	tp.respond = func(i int, probe []byte) []byte {
		hdr, _, _ := packet.ParseIPv4(probe)
		if hdr.TTL < 3 {
			return timeExceededFrom(t, router(int(hdr.TTL)), probe, 250, 1)
		}
		m, err := packet.DestUnreachable(packet.CodeHostUnreachable, probe)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := m.Marshal()
		resp, _ := (&packet.IPv4{TTL: 60, Protocol: packet.ProtoICMP,
			Src: router(3), Dst: hdr.Src}).Marshal(body)
		return resp
	}
	rt, err := NewParisUDP(tp, Options{MaxTTL: 30}).Trace(tDest)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Halt != HaltUnreachable {
		t.Errorf("halt = %v, want unreachable", rt.Halt)
	}
	last := rt.Hops[len(rt.Hops)-1]
	if last.Kind != KindHostUnreachable || last.Kind.Flag() != "!H" {
		t.Errorf("last kind = %v flag %q", last.Kind, last.Kind.Flag())
	}
}

func TestMismatchedResponseFlagged(t *testing.T) {
	tp := &captureTransport{src: tSrc}
	tp.respond = func(i int, probe []byte) []byte {
		// Quote a DIFFERENT probe: wrong UDP checksum inside the quote.
		hdr, _, _ := packet.ParseIPv4(probe)
		other, err := packet.MarshalUDP(hdr.Src, hdr.Dst, &packet.UDP{SrcPort: 1, DstPort: 2}, make([]byte, 4))
		if err != nil {
			t.Fatal(err)
		}
		fake, err := (&packet.IPv4{TTL: 1, Protocol: packet.ProtoUDP, Src: hdr.Src, Dst: hdr.Dst}).Marshal(other)
		if err != nil {
			t.Fatal(err)
		}
		return timeExceededFrom(t, router(1), fake, 250, 1)
	}
	rt, err := NewParisUDP(tp, Options{MaxTTL: 1}).Trace(tDest)
	if err != nil {
		t.Fatal(err)
	}
	if !rt.Hops[0].Mismatched {
		t.Error("response quoting a different probe was not flagged as mismatched")
	}
}

func TestHopObservables(t *testing.T) {
	tp := &captureTransport{src: tSrc}
	tp.respond = func(i int, probe []byte) []byte {
		return timeExceededFrom(t, router(1), probe, 247, 0xabcd)
	}
	rt, err := NewParisUDP(tp, Options{MaxTTL: 1}).Trace(tDest)
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Hops[0]
	if h.RespTTL != 247 {
		t.Errorf("RespTTL = %d, want 247", h.RespTTL)
	}
	if h.IPID != 0xabcd {
		t.Errorf("IPID = %#04x, want 0xabcd", h.IPID)
	}
	if h.ProbeTTL != 1 {
		t.Errorf("ProbeTTL = %d, want 1", h.ProbeTTL)
	}
	if h.RTT != time.Millisecond {
		t.Errorf("RTT = %v", h.RTT)
	}
}

func TestProbesPerHopRecordsAll(t *testing.T) {
	tp := scriptedChain(t, 3)
	rt, err := NewClassicUDP(tp, Options{MaxTTL: 10, ProbesPerHop: 3}).Trace(tDest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.All) != len(rt.Hops) {
		t.Fatalf("All has %d entries, Hops %d", len(rt.All), len(rt.Hops))
	}
	for i, attempts := range rt.All {
		if len(attempts) != 3 {
			t.Errorf("hop %d: %d attempts, want 3", i+1, len(attempts))
		}
	}
	if len(tp.probes) != 3*len(rt.Hops) {
		t.Errorf("probes sent = %d, want %d", len(tp.probes), 3*len(rt.Hops))
	}
}

func TestEchoReplyTerminatesICMPTrace(t *testing.T) {
	tp := &captureTransport{src: tSrc}
	tp.respond = func(i int, probe []byte) []byte {
		hdr, payload, _ := packet.ParseIPv4(probe)
		if hdr.TTL < 3 {
			return timeExceededFrom(t, router(int(hdr.TTL)), probe, 250, 1)
		}
		m, _ := packet.ParseICMP(payload)
		reply := &packet.ICMP{Type: packet.ICMPTypeEchoReply, ID: m.ID, Seq: m.Seq}
		body, _ := reply.Marshal()
		resp, _ := (&packet.IPv4{TTL: 60, Protocol: packet.ProtoICMP, Src: tDest, Dst: hdr.Src}).Marshal(body)
		return resp
	}
	rt, err := NewParisICMP(tp, Options{MaxTTL: 30}).Trace(tDest)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Halt != HaltDestination {
		t.Errorf("halt = %v, want destination", rt.Halt)
	}
	if last := rt.Hops[len(rt.Hops)-1]; last.Kind != KindEchoReply {
		t.Errorf("last kind = %v, want echo-reply", last.Kind)
	}
}

func TestRouteAddressesTuple(t *testing.T) {
	tp := scriptedChain(t, 3)
	rt, err := NewParisUDP(tp, Options{MaxTTL: 10}).Trace(tDest)
	if err != nil {
		t.Fatal(err)
	}
	addrs := rt.Addresses()
	if len(addrs) != 3 {
		t.Fatalf("len = %d", len(addrs))
	}
	if addrs[0] != router(1) || addrs[2] != tDest {
		t.Errorf("addresses = %v", addrs)
	}
}

// mkObsRoute builds a route with distinctive observables for the
// fingerprint and equality tests.
func mkObsRoute() *Route {
	return &Route{
		Dest:   tDest,
		Source: tSrc,
		Halt:   HaltDestination,
		Hops: []Hop{
			{TTL: 2, Addr: netip.AddrFrom4([4]byte{10, 0, 0, 2}), Kind: KindTimeExceeded, ProbeTTL: 1, RespTTL: 253, IPID: 7, RTT: 3 * time.Millisecond},
			{TTL: 3, Kind: KindNone, ProbeTTL: -1},
			{TTL: 4, Addr: tDest, Kind: KindPortUnreachable, ProbeTTL: 1, RespTTL: 251, IPID: 9, RTT: 5 * time.Millisecond},
		},
	}
}

func TestRouteEqualAndFingerprint(t *testing.T) {
	a, b := mkObsRoute(), mkObsRoute()
	if !a.Equal(b) || a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical routes must compare Equal with equal fingerprints")
	}

	// RTT, IP ID and the All table are per-exchange quantities, not path
	// observables: they differ round over round even when the path did
	// not, so they must not break interning.
	b.Hops[0].RTT = 40 * time.Millisecond
	b.Hops[0].IPID = 12345
	b.All = [][]Hop{b.Hops[:1]}
	if !a.Equal(b) || a.Fingerprint() != b.Fingerprint() {
		t.Error("RTT/IPID/All changes must not affect Equal or Fingerprint")
	}

	mutations := []struct {
		name string
		mut  func(r *Route)
	}{
		{"dest", func(r *Route) { r.Dest = netip.AddrFrom4([4]byte{172, 16, 0, 2}) }},
		{"source", func(r *Route) { r.Source = netip.AddrFrom4([4]byte{10, 0, 0, 99}) }},
		{"halt", func(r *Route) { r.Halt = HaltStars }},
		{"hop count", func(r *Route) { r.Hops = r.Hops[:2] }},
		{"hop ttl", func(r *Route) { r.Hops[0].TTL = 9 }},
		{"hop addr", func(r *Route) { r.Hops[0].Addr = netip.AddrFrom4([4]byte{10, 0, 0, 3}) }},
		{"hop star", func(r *Route) { r.Hops[0].Kind = KindNone; r.Hops[0].Addr = netip.Addr{} }},
		{"hop kind", func(r *Route) { r.Hops[2].Kind = KindEchoReply }},
		{"probe ttl", func(r *Route) { r.Hops[0].ProbeTTL = 0 }},
		{"resp ttl", func(r *Route) { r.Hops[0].RespTTL = 200 }},
		{"mismatched", func(r *Route) { r.Hops[0].Mismatched = true }},
	}
	for _, m := range mutations {
		c := mkObsRoute()
		m.mut(c)
		if a.Equal(c) {
			t.Errorf("%s: mutated route still compares Equal", m.name)
		}
		if a.Fingerprint() == c.Fingerprint() {
			t.Errorf("%s: mutated route kept the same fingerprint", m.name)
		}
	}
}

func TestRouteEqualNil(t *testing.T) {
	var nilRoute *Route
	r := mkObsRoute()
	if nilRoute.Equal(r) || r.Equal(nilRoute) {
		t.Error("nil route compares Equal to a real one")
	}
	if !nilRoute.Equal(nilRoute) {
		t.Error("nil must equal nil")
	}
}
