// Package repro is a full reproduction of "Avoiding traceroute anomalies
// with Paris traceroute" (Augustin et al., IMC 2006): the Paris traceroute
// probing technique, the classic tools it is compared against, the loop /
// cycle / diamond anomaly taxonomy with cause classification, and the
// measurement methodology of the paper's study — all runnable against a
// deterministic packet-level network simulator (or a live UDP transport).
//
// The top-level package is a thin facade; the implementation lives in:
//
//   - internal/packet  — IPv4/UDP/TCP/ICMPv4 wire formats and the
//     checksum-crafting tricks Paris traceroute depends on;
//   - internal/flow    — flow-identifier extraction and ECMP hashing;
//   - internal/netsim  — the simulated network (routers, load balancers,
//     NATs, faults, routing dynamics);
//   - internal/topo    — topology presets for every paper figure and the
//     campaign generator;
//   - internal/tracer  — classic, Paris, and TCP traceroute engines;
//   - internal/anomaly — loop/cycle/diamond detection and classification;
//   - internal/measure — the Section 3/4 campaign engine and statistics;
//   - internal/core    — the high-level workflow API.
//
// Quick start (simulated network):
//
//	fig := topo.BuildFigure3(1)                    // a load-balanced net
//	tp := netsim.NewTransport(fig.Net)
//	paris := tracer.NewParisUDP(tp, tracer.Options{})
//	route, err := paris.Trace(fig.Dest.Addr)
//
// See examples/ for runnable programs and cmd/ for the CLI tools.
package repro

import (
	"net/netip"

	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/tracer"
)

// Session is the high-level measurement API (see internal/core).
type Session = core.Session

// NewSimulatedSession generates a random Internet-like scenario with the
// given seed and returns a measurement session over it together with the
// scenario's destination list.
func NewSimulatedSession(seed int64, destinations int) (*Session, []netip.Addr) {
	cfg := topo.DefaultGenConfig()
	cfg.Seed = seed
	cfg.Destinations = destinations
	sc := topo.Generate(cfg)
	return core.NewSession(netsim.NewTransport(sc.Net)), sc.Dests
}

// NewParisUDP returns the Paris traceroute engine (UDP probing, constant
// flow identifier, checksum-coded probe IDs) over any transport.
func NewParisUDP(tp tracer.Transport, opts tracer.Options) tracer.Tracer {
	return tracer.NewParisUDP(tp, opts)
}

// NewClassicUDP returns the classic Jacobson traceroute engine (UDP
// probing, destination port varied per probe).
func NewClassicUDP(tp tracer.Transport, opts tracer.Options) tracer.Tracer {
	return tracer.NewClassicUDP(tp, opts)
}

// RunCampaign executes a paired classic/Paris measurement campaign and
// returns its anomaly statistics (see internal/measure for details). With
// cfg.Stream set the statistics are folded during the campaign in constant
// memory; otherwise every pair is retained and analyzed at the end — the
// two paths produce identical Stats.
func RunCampaign(tp tracer.Transport, cfg measure.Config) (*measure.Stats, error) {
	camp, err := measure.NewCampaign(tp, cfg)
	if err != nil {
		return nil, err
	}
	res, err := camp.Run()
	if err != nil {
		return nil, err
	}
	if res.Stats != nil {
		return res.Stats, nil
	}
	return measure.Analyze(res), nil
}
