package repro

import (
	"testing"

	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/tracer"
)

func TestNewSimulatedSession(t *testing.T) {
	sess, dests := NewSimulatedSession(7, 50)
	if len(dests) != 50 {
		t.Fatalf("dests = %d", len(dests))
	}
	res, err := sess.MeasurePair(dests[0])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Paris.Reached() || !res.Classic.Reached() {
		t.Errorf("halts: paris=%v classic=%v", res.Paris.Halt, res.Classic.Halt)
	}
}

func TestFacadeTracerConstructors(t *testing.T) {
	fig := topo.BuildFigure3(1)
	tp := netsim.NewTransport(fig.Net)
	for _, tr := range []tracer.Tracer{
		NewParisUDP(tp, tracer.Options{MaxTTL: 15}),
		NewClassicUDP(tp, tracer.Options{MaxTTL: 15}),
	} {
		rt, err := tr.Trace(fig.Dest.Addr)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		if !rt.Reached() {
			t.Errorf("%s: halt %v", tr.Name(), rt.Halt)
		}
	}
}

func TestRunCampaignFacade(t *testing.T) {
	cfg := topo.DefaultGenConfig()
	cfg.Destinations = 30
	sc := topo.Generate(cfg)
	stats, err := RunCampaign(netsim.NewTransport(sc.Net), measure.Config{
		Dests: sc.Dests, Rounds: 2, Workers: 4,
		RoundStart: sc.RoundStart, PortSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Routes != 60 {
		t.Errorf("routes = %d, want 60", stats.Routes)
	}
	if stats.Responses == 0 || stats.AddrsSeen == 0 {
		t.Errorf("empty stats: %+v", stats)
	}
}
